//! The cost-based query planner: selectivity estimation and strategy choice.
//!
//! MaskSearch executors implement several *exact-equivalent* strategies for
//! the same query: CP comparisons of a predicate can have their CHI bounds
//! computed in any order (three-valued evaluation is monotone, so an early
//! `True`/`False` is final), the verification kernel and the reference scan
//! return byte-identical counts, the pair executor's bounds pass is a pure
//! pruning optimization over load-everything, and the cluster's single-round
//! and threshold top-k merges both produce the exact global top-k. Which
//! strategy is *fastest* depends on the data: the kernel loses ~15% on
//! noise-like masks with bin-unaligned ranges (every tile falls back to a
//! pixel scan), and the pair bounds pass loses ~6% when the observed
//! verified fraction reaches 1.0 (nothing prunes, the pass is pure
//! overhead).
//!
//! This crate is the *cost model*: pure functions from features — CHI
//! tail-count bounds, tile-summary alignment, and the observed per-shape
//! aggregates of [`masksearch_obs::ShapeStatsRegistry`] — to strategy
//! decisions. It deliberately knows nothing about queries, sessions, or
//! storage; `masksearch-query` extracts the features and executes whatever
//! this crate picks. Because every choice selects among byte-identical
//! strategies, a planner bug can cost time but never correctness (the
//! differential suite in `masksearch-query` proves this).
//!
//! Estimates start from the CHI: a comparison's sampled bound interval
//! classifies candidates into definitely-true / definitely-false /
//! unknown, giving both an estimated selectivity (§3.2's filter step run on
//! a sample) and a *gap fraction* — how wide the bounds are relative to the
//! ROI area, which is the same smoothness signal that predicts whether tile
//! min/max summaries will prune. Observed [`ShapeAggregate`]s then refine
//! the estimates query over query; the aggregates are persisted in
//! `masks.stats` at checkpoint, so the profile survives restarts.

use masksearch_core::{PixelRange, TILE_BINS};
use masksearch_obs::ShapeAggregate;

/// Feedback below this many observed queries of a shape is ignored: a single
/// unlucky query must not lock the planner into a strategy.
pub const MIN_FEEDBACK_QUERIES: u64 = 3;

/// Candidates sampled per query for cold-start estimates. Sampling is a few
/// CHI region queries per candidate — microseconds against catalogs of
/// thousands — so a small constant suffices.
pub const SAMPLE_TARGET: usize = 8;

/// Every this-many queries of a shape, a skippable stage runs anyway so the
/// observed statistics keep tracking the data (otherwise "skip the bounds
/// pass" would freeze `verified_fraction` at 1.0 forever).
pub const REPROBE_PERIOD: u64 = 16;

/// Bound-gap fraction above which a mask is treated as noise-like: its tile
/// min/max summaries span the whole value domain, so an unaligned range
/// forces a pixel scan of every tile and the kernel's bookkeeping is pure
/// overhead (the measured 0.85x worst case).
pub const NOISE_GAP_THRESHOLD: f64 = 0.5;

/// Observed verified fraction at or above which the pair bounds pass is
/// predicted useless and skipped (the measured 0.94x worst case).
pub const LOAD_FIRST_THRESHOLD: f64 = 0.95;

/// Observed fraction of kernel tiles resolved without a pixel scan below
/// which the kernel is predicted to lose to the reference scan.
pub const KERNEL_TILE_RATIO_FLOOR: f64 = 0.05;

/// Session-level override for the verification-kernel choice.
///
/// `ForceOn`/`ForceOff` reproduce the old boolean `use_tiled_kernel`
/// semantics exactly; `Auto` (the default) lets the planner choose per mask.
/// Counts are byte-identical under every mode — the override exists for
/// benchmarking, conformance tests, and operators who have already measured
/// their workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// The planner decides per mask from tile-summary features.
    #[default]
    Auto,
    /// Always route verification through the tiled kernel.
    ForceOn,
    /// Always use the reference batched scan.
    ForceOff,
}

impl KernelMode {
    /// Stable lowercase label (`auto` / `on` / `off`) used in shape keys and
    /// EXPLAIN output.
    pub fn label(&self) -> &'static str {
        match self {
            KernelMode::Auto => "auto",
            KernelMode::ForceOn => "on",
            KernelMode::ForceOff => "off",
        }
    }
}

/// Session-level override for the pair executor's stage order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PairMode {
    /// The planner decides from the estimated verified fraction.
    #[default]
    Auto,
    /// Always run the composed-bounds pass before loading masks.
    ForceBounds,
    /// Always load and verify every bound pair (skip the bounds pass).
    ForceLoad,
}

/// The planner's kernel decision, resolved per mask at verification time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelChoice {
    /// Forced by [`KernelMode`]: no per-mask resolution.
    Forced(bool),
    /// Chosen per mask: `aligned` ranges always take the kernel (interior
    /// tiles answer from histograms regardless of mask content); unaligned
    /// ranges consult the mask's own bound-gap fraction against
    /// [`NOISE_GAP_THRESHOLD`], falling back to `default_on` (the sampled /
    /// observed estimate) when the mask has no CHI.
    Auto {
        /// Every CP range in the query lands on tile-histogram bin edges.
        aligned: bool,
        /// Decision when a mask offers no per-mask evidence.
        default_on: bool,
    },
}

impl KernelChoice {
    /// The decision when it does not depend on the individual mask, if any.
    pub fn static_decision(&self) -> Option<bool> {
        match *self {
            KernelChoice::Forced(on) => Some(on),
            KernelChoice::Auto { aligned: true, .. } => Some(true),
            KernelChoice::Auto { aligned: false, .. } => None,
        }
    }

    /// Resolves the choice for one mask. `gap_fraction` is the mask's mean
    /// CHI bound gap relative to ROI area ([`TermStats::mean_gap`]), `None`
    /// when the mask has no CHI yet.
    pub fn decide(&self, gap_fraction: Option<f64>) -> bool {
        match *self {
            KernelChoice::Forced(on) => on,
            KernelChoice::Auto {
                aligned,
                default_on,
            } => {
                if aligned {
                    true
                } else {
                    match gap_fraction {
                        Some(gap) => gap < NOISE_GAP_THRESHOLD,
                        None => default_on,
                    }
                }
            }
        }
    }

    /// Stable label for EXPLAIN / slow-log signatures.
    pub fn label(&self) -> &'static str {
        match self {
            KernelChoice::Forced(true) => "tiled",
            KernelChoice::Forced(false) => "scan",
            KernelChoice::Auto {
                default_on: true, ..
            } => "auto:tiled",
            KernelChoice::Auto {
                default_on: false, ..
            } => "auto:scan",
        }
    }
}

/// Returns `true` if the range's bounds both land exactly on tile-histogram
/// bin edges `i / TILE_BINS`, which lets every interior tile answer from its
/// cumulative histogram regardless of mask content. This mirrors the
/// kernel's own (private) edge test: `bound * TILE_BINS` is exact because
/// `TILE_BINS` is a power of two.
pub fn range_is_bin_aligned(range: &PixelRange) -> bool {
    let edge = |bound: f32| {
        let scaled = bound * TILE_BINS as f32;
        scaled >= 0.0 && scaled <= TILE_BINS as f32 && scaled == scaled.floor()
    };
    edge(range.lo()) && edge(range.hi())
}

/// Per-comparison statistics from the plan-time candidate sample: how the
/// CHI bound interval classified each sampled candidate, plus the mean
/// bound-gap fraction (interval width over ROI area).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TermStats {
    /// Sampled candidates the bounds proved satisfying.
    pub trues: u32,
    /// Sampled candidates the bounds proved failing.
    pub falses: u32,
    /// Sampled candidates the bounds left undecided.
    pub unknowns: u32,
    /// Sum of per-candidate `(upper - lower) / roi_area` gap fractions.
    pub gap_sum: f64,
}

impl TermStats {
    /// Number of candidates sampled.
    pub fn sampled(&self) -> u32 {
        self.trues + self.falses + self.unknowns
    }

    /// Estimated selectivity: expected fraction of candidates satisfying the
    /// comparison, counting undecided candidates as a coin flip. `0.5` when
    /// nothing was sampled (no evidence, no preference).
    pub fn est_selectivity(&self) -> f64 {
        let n = self.sampled();
        if n == 0 {
            return 0.5;
        }
        (self.trues as f64 + 0.5 * self.unknowns as f64) / n as f64
    }

    /// Fraction of sampled candidates the bounds decided outright.
    pub fn decisiveness(&self) -> f64 {
        let n = self.sampled();
        if n == 0 {
            return 0.0;
        }
        (self.trues + self.falses) as f64 / n as f64
    }

    /// Mean bound-gap fraction over the sample: near 0 for smooth masks
    /// (cells lie wholly in or out of the range), near 1 for noise.
    pub fn mean_gap(&self) -> f64 {
        let n = self.sampled();
        if n == 0 {
            return 1.0;
        }
        (self.gap_sum / n as f64).clamp(0.0, 1.0)
    }
}

/// Orders comparison indexes most-selective-first (ascending estimated
/// selectivity, stable on ties so equal estimates keep written order).
///
/// Three-valued predicate evaluation is monotone: once the partially-bound
/// predicate evaluates `True` or `False`, the remaining comparisons cannot
/// change it — so computing the comparison most likely to *decide* first
/// skips the most CHI work. Cost order only: the executor still supplies
/// values in written order, so results are byte-identical.
pub fn order_terms(estimates: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    // Distance from decisive: a comparison near 0 (mostly false) or near 1
    // (mostly true) is likely to settle an AND / OR early; 0.5 decides
    // nothing. Most workloads filter (AND of selective comparisons), so ties
    // between "mostly false" and "mostly true" break toward the smaller
    // selectivity.
    order.sort_by(|&a, &b| {
        let decisive = |s: f64| (s - 0.5).abs();
        decisive(estimates[b])
            .partial_cmp(&decisive(estimates[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                estimates[a]
                    .partial_cmp(&estimates[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then(a.cmp(&b))
    });
    order
}

/// Chooses the kernel strategy from the session override, the query's range
/// alignment, the sampled gap fraction, and (when mature) the shape's
/// observed tile-resolution ratio.
pub fn choose_kernel(
    mode: KernelMode,
    aligned: bool,
    sampled_gap: Option<f64>,
    feedback: Option<&ShapeAggregate>,
) -> KernelChoice {
    match mode {
        KernelMode::ForceOn => KernelChoice::Forced(true),
        KernelMode::ForceOff => KernelChoice::Forced(false),
        KernelMode::Auto => {
            let default_on = observed_kernel_ratio(feedback)
                .map(|ratio| ratio >= KERNEL_TILE_RATIO_FLOOR)
                .or_else(|| sampled_gap.map(|gap| gap < NOISE_GAP_THRESHOLD))
                .unwrap_or(true);
            KernelChoice::Auto {
                aligned,
                default_on,
            }
        }
    }
}

/// The observed fraction of kernel tiles resolved without a pixel scan, but
/// only when the kernel actually ran under this shape: a shape whose queries
/// all chose the scan has zero tile counters, and reading that as "ratio 0,
/// keep the kernel off" would lock the decision in forever.
fn observed_kernel_ratio(feedback: Option<&ShapeAggregate>) -> Option<f64> {
    let agg = feedback?;
    let touched = agg.sums.tiles_pruned + agg.sums.tiles_hist + agg.sums.tiles_scanned;
    if agg.queries >= MIN_FEEDBACK_QUERIES && touched > 0 {
        Some(agg.kernel_tile_ratio())
    } else {
        None
    }
}

/// Chooses load-first (skip the pair bounds pass) when the shape's observed
/// verified fraction predicts the pass will prune nothing. Every
/// [`REPROBE_PERIOD`]-th query runs bounds-first anyway so the estimate
/// keeps tracking the data.
pub fn choose_load_first(mode: PairMode, feedback: Option<&ShapeAggregate>) -> bool {
    match mode {
        PairMode::ForceBounds => false,
        PairMode::ForceLoad => true,
        PairMode::Auto => match feedback {
            Some(agg)
                if agg.queries >= MIN_FEEDBACK_QUERIES
                    && agg.queries % REPROBE_PERIOD != 0
                    && agg.sums.candidates > 0 =>
            {
                agg.verified_fraction() >= LOAD_FIRST_THRESHOLD
            }
            _ => false,
        },
    }
}

/// Chooses single-round top-k (ask every shard for the full `k` once) over
/// the threshold algorithm (small first round, refine while a shard's bound
/// may improve the merge).
///
/// Single-round wins when the threshold algorithm would ask for almost `k`
/// anyway (small `k` relative to the shard count) or when observed rounds
/// show refinement rarely converging in one pass. Both merges produce the
/// exact global top-k, so this only trades request fan-out against rounds.
pub fn choose_single_round(k: usize, shards: usize, observed_avg_rounds: Option<f64>) -> bool {
    if shards <= 1 {
        return true;
    }
    // The threshold algorithm's first round asks ceil(k/shards)+1; when that
    // already reaches k the refinement machinery can only add rounds.
    let first_k = (k.div_ceil(shards) + 1).min(k);
    if first_k >= k {
        return true;
    }
    match observed_avg_rounds {
        Some(avg) => avg >= 1.5,
        None => false,
    }
}

/// A query's plan: which exact strategy runs at each decision point, plus
/// the estimates that picked it (surfaced by `EXPLAIN`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Cost order over the predicate's comparisons (most decisive first);
    /// identity when nothing was worth reordering.
    pub term_order: Vec<usize>,
    /// Estimated selectivity per comparison, in *written* order.
    pub term_estimates: Vec<f64>,
    /// Estimated selectivity of the whole predicate over the sample.
    pub est_selectivity: f64,
    /// Kernel strategy (decision b).
    pub kernel: KernelChoice,
    /// Pair queries: skip the bounds pass and load every pair (decision c).
    pub load_first: bool,
}

impl QueryPlan {
    /// A plan that reproduces the fixed pre-planner pipeline: written term
    /// order, forced kernel, bounds-first.
    pub fn fixed(kernel_on: bool) -> Self {
        Self {
            term_order: Vec::new(),
            term_estimates: Vec::new(),
            est_selectivity: 0.5,
            kernel: KernelChoice::Forced(kernel_on),
            load_first: false,
        }
    }

    /// Returns `true` if the planner moved any comparison off its written
    /// position.
    pub fn reordered(&self) -> bool {
        self.term_order
            .iter()
            .enumerate()
            .any(|(position, &index)| position != index)
    }

    /// Compact strategy signature for the slow-query log and EXPLAIN:
    /// `kernel=<choice> bounds=<first|skipped> order=<permutation|written>`.
    pub fn signature(&self) -> String {
        let order = if self.reordered() {
            self.term_order
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        } else {
            "written".to_string()
        };
        format!(
            "kernel={} bounds={} order={}",
            self.kernel.label(),
            if self.load_first { "skipped" } else { "first" },
            order,
        )
    }
}

impl Default for QueryPlan {
    fn default() -> Self {
        Self {
            term_order: Vec::new(),
            term_estimates: Vec::new(),
            est_selectivity: 0.5,
            kernel: KernelChoice::Auto {
                aligned: false,
                default_on: true,
            },
            load_first: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_obs::{ShapeObservation, ShapeStatsRegistry};

    fn aggregate(queries: u64, observation: ShapeObservation) -> ShapeAggregate {
        let reg = ShapeStatsRegistry::new();
        for _ in 0..queries {
            reg.record("s", &observation);
        }
        reg.get("s").unwrap()
    }

    #[test]
    fn kernel_mode_labels_are_stable() {
        assert_eq!(KernelMode::Auto.label(), "auto");
        assert_eq!(KernelMode::ForceOn.label(), "on");
        assert_eq!(KernelMode::ForceOff.label(), "off");
        assert_eq!(KernelMode::default(), KernelMode::Auto);
    }

    #[test]
    fn bin_alignment_mirrors_the_kernel_edge_test() {
        let aligned = PixelRange::new(0.5, 0.75).unwrap();
        assert!(range_is_bin_aligned(&aligned));
        // 1/16-granular edges are exactly representable.
        assert!(range_is_bin_aligned(&PixelRange::new(0.0625, 1.0).unwrap()));
        let unaligned = PixelRange::new(0.3, 0.7).unwrap();
        assert!(!range_is_bin_aligned(&unaligned));
        assert!(!range_is_bin_aligned(&PixelRange::new(0.5, 0.71).unwrap()));
    }

    #[test]
    fn term_stats_derive_selectivity_decisiveness_and_gap() {
        let stats = TermStats {
            trues: 2,
            falses: 5,
            unknowns: 1,
            gap_sum: 0.8,
        };
        assert_eq!(stats.sampled(), 8);
        assert!((stats.est_selectivity() - 2.5 / 8.0).abs() < 1e-12);
        assert!((stats.decisiveness() - 7.0 / 8.0).abs() < 1e-12);
        assert!((stats.mean_gap() - 0.1).abs() < 1e-12);
        // No evidence: neutral selectivity, maximal gap.
        let empty = TermStats::default();
        assert_eq!(empty.est_selectivity(), 0.5);
        assert_eq!(empty.mean_gap(), 1.0);
    }

    #[test]
    fn order_puts_decisive_terms_first_and_is_stable() {
        // 0.9 and 0.1 are equally decisive; the tie breaks toward the
        // smaller selectivity (prune-first), then written order.
        assert_eq!(order_terms(&[0.5, 0.9, 0.1]), vec![2, 1, 0]);
        assert_eq!(order_terms(&[0.4, 0.4, 0.4]), vec![0, 1, 2]);
        assert_eq!(order_terms(&[]), Vec::<usize>::new());
        assert_eq!(order_terms(&[0.3]), vec![0]);
    }

    #[test]
    fn forced_kernel_modes_ignore_every_feature() {
        let on = choose_kernel(KernelMode::ForceOn, false, Some(1.0), None);
        assert_eq!(on.static_decision(), Some(true));
        assert!(on.decide(Some(1.0)));
        let off = choose_kernel(KernelMode::ForceOff, true, Some(0.0), None);
        assert_eq!(off.static_decision(), Some(false));
        assert!(!off.decide(Some(0.0)));
    }

    #[test]
    fn auto_kernel_prefers_aligned_ranges_then_gap() {
        let aligned = choose_kernel(KernelMode::Auto, true, Some(1.0), None);
        assert_eq!(aligned.static_decision(), Some(true));
        assert!(aligned.decide(Some(1.0)));

        let unaligned = choose_kernel(KernelMode::Auto, false, Some(0.9), None);
        assert_eq!(unaligned.static_decision(), None);
        // Per-mask gap overrides the default; a smooth mask still takes the
        // kernel under a noise-dominated sample.
        assert!(unaligned.decide(Some(0.1)));
        assert!(!unaligned.decide(Some(0.9)));
        assert!(!unaligned.decide(None), "noisy sample sets default off");

        let smooth = choose_kernel(KernelMode::Auto, false, Some(0.1), None);
        assert!(smooth.decide(None), "smooth sample sets default on");
    }

    #[test]
    fn kernel_feedback_requires_tiles_to_have_run() {
        // Mature feedback where the kernel scanned everything: default off.
        let noisy = aggregate(
            5,
            ShapeObservation {
                candidates: 100,
                verified: 100,
                tiles_scanned: 1000,
                ..Default::default()
            },
        );
        let choice = choose_kernel(KernelMode::Auto, false, Some(0.1), Some(&noisy));
        assert!(!choice.decide(None), "observed ratio 0 beats the sample");

        // Feedback with zero tile counters (kernel never ran): no lock-in,
        // the sampled gap decides.
        let scan_only = aggregate(
            5,
            ShapeObservation {
                candidates: 100,
                verified: 100,
                ..Default::default()
            },
        );
        let choice = choose_kernel(KernelMode::Auto, false, Some(0.1), Some(&scan_only));
        assert!(choice.decide(None));

        // Immature feedback is ignored.
        let young = aggregate(
            1,
            ShapeObservation {
                candidates: 10,
                tiles_scanned: 100,
                ..Default::default()
            },
        );
        let choice = choose_kernel(KernelMode::Auto, false, Some(0.1), Some(&young));
        assert!(choice.decide(None));
    }

    #[test]
    fn load_first_needs_mature_saturated_feedback() {
        assert!(!choose_load_first(PairMode::Auto, None));
        let saturated = aggregate(
            5,
            ShapeObservation {
                candidates: 100,
                verified: 100,
                ..Default::default()
            },
        );
        assert!(choose_load_first(PairMode::Auto, Some(&saturated)));
        let decisive = aggregate(
            5,
            ShapeObservation {
                candidates: 100,
                verified: 10,
                pruned: 90,
                ..Default::default()
            },
        );
        assert!(!choose_load_first(PairMode::Auto, Some(&decisive)));
        // Overrides win regardless of evidence.
        assert!(!choose_load_first(PairMode::ForceBounds, Some(&saturated)));
        assert!(choose_load_first(PairMode::ForceLoad, None));
    }

    #[test]
    fn reprobe_periodically_runs_bounds_first_again() {
        let observation = ShapeObservation {
            candidates: 10,
            verified: 10,
            ..Default::default()
        };
        let at_period = aggregate(REPROBE_PERIOD, observation);
        assert!(
            !choose_load_first(PairMode::Auto, Some(&at_period)),
            "query {REPROBE_PERIOD} re-probes"
        );
        let past_period = aggregate(REPROBE_PERIOD + 1, observation);
        assert!(choose_load_first(PairMode::Auto, Some(&past_period)));
    }

    #[test]
    fn single_round_covers_trivial_and_slow_converging_cases() {
        assert!(choose_single_round(10, 1, None));
        // k=2 over 4 shards: the threshold first round already asks k per
        // shard, so refinement can only add rounds.
        assert!(choose_single_round(2, 4, None));
        // Large k over few shards: threshold saves fan-out, keep it.
        assert!(!choose_single_round(100, 4, None));
        // ... unless observed rounds say refinement rarely converges.
        assert!(choose_single_round(100, 4, Some(2.0)));
        assert!(!choose_single_round(100, 4, Some(1.1)));
    }

    #[test]
    fn plan_signature_and_reorder_flag() {
        let mut plan = QueryPlan::default();
        assert!(!plan.reordered());
        assert_eq!(
            plan.signature(),
            "kernel=auto:tiled bounds=first order=written"
        );
        plan.term_order = vec![1, 0];
        plan.load_first = true;
        plan.kernel = KernelChoice::Forced(false);
        assert!(plan.reordered());
        assert_eq!(plan.signature(), "kernel=scan bounds=skipped order=1,0");
        let fixed = QueryPlan::fixed(true);
        assert!(!fixed.reordered());
        assert_eq!(fixed.kernel.static_decision(), Some(true));
    }
}
