//! Offline shim for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Provides the subset of the real crate's API this workspace uses:
//! [`Mutex`] and [`RwLock`] with *non-poisoning* guards. The shim wraps
//! `std::sync` primitives and recovers from poisoning on every acquisition,
//! which reproduces parking_lot's semantics (a panicking thread does not
//! make the lock permanently unusable).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose guards never poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
