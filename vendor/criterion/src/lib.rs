//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Each benchmark is warmed up once, then timed over `sample_size` samples
//! whose per-sample iteration count is chosen so one sample costs roughly
//! [`TARGET_SAMPLE_TIME`]; mean/min times are printed to stdout. There is no
//! statistical analysis and no HTML report.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Upper bound on the time spent measuring one sample.
pub const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warm-up and calibration: one iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    let median = samples[samples.len() / 2];
    println!(
        "bench {id:<48} mean {:>12} median {:>12} min {:>12} ({} samples x {} iters)",
        format_time(mean),
        format_time(median),
        format_time(min),
        sample_size,
        iters_per_sample,
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions (both criterion macro forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
