//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset used by this workspace: the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, [`Strategy`] with `prop_map` /
//! `prop_filter_map`, [`any`], range strategies, tuple strategies,
//! `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Inputs are drawn from a deterministic ChaCha8 stream seeded from the test
//! name and case index, so failures are reproducible run to run. There is no
//! shrinking: a failing case panics with the assertion message directly.

use rand::rand_core::SeedableRng;
use rand::{Rng, RngCore, SampleUniform};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// Number-of-cases configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for one `(test name, case index)` pair.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        Self(ChaCha8Rng::seed_from_u64(
            hash ^ ((case as u64) << 32 | 0x9e37),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// How many rejections a `prop_filter_map` strategy tolerates per draw.
const MAX_REJECTS: u32 = 1024;

/// A generator of random values (shim of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, redrawing when it returns `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "strategy rejected {MAX_REJECTS} consecutive draws: {}",
            self.whence
        );
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "anything" strategy (shim of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1e6f32..1e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1e9f64..1e9)
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (shim of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (shim of `proptest::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with random length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prop_mod {
    //! The `prop::` namespace re-exported by the prelude.
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property-test file needs (shim of `proptest::prelude`).
    pub use crate::prop_mod as prop;
    pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a boolean property, reporting the failing case on panic.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality, reporting the failing case on panic.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality, reporting the failing case on panic.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests over strategies (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_work(
            a in 1u32..10,
            pair in (0u32..5, 0.0f64..1.0),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(pair.0 < 5 && (0.0..1.0).contains(&pair.1));
            prop_assert!(u32::from(flag) <= 1);
        }

        #[test]
        fn map_and_filter_map_compose(
            even in (0u32..100).prop_map(|x| x * 2),
            odd in (0u32..100).prop_filter_map("odd", |x| (x % 2 == 1).then_some(x)),
        ) {
            prop_assert_eq!(even % 2, 0);
            prop_assert_eq!(odd % 2, 1);
        }

        #[test]
        fn vec_strategy_respects_length(
            v in prop::collection::vec(any::<u64>(), 3..7),
        ) {
            prop_assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x", 1);
        let mut b = TestRng::deterministic("x", 1);
        let strat = (0u64..1000, 0u64..1000);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
