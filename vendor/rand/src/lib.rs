//! Offline shim for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the real API used by this workspace:
//! [`rand_core::RngCore`], [`rand_core::SeedableRng`] (including the
//! SplitMix64-based `seed_from_u64` used by the real crate), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose_multiple`).

pub mod rand_core {
    //! Core RNG traits (shim for the `rand_core` crate).

    /// A source of uniformly random bits.
    pub trait RngCore {
        /// Next 32 random bits.
        fn next_u32(&mut self) -> u32;
        /// Next 64 random bits.
        fn next_u64(&mut self) -> u64;
        /// Fills `dest` with random bytes.
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    impl<R: RngCore + ?Sized> RngCore for &mut R {
        fn next_u32(&mut self) -> u32 {
            (**self).next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }

    /// An RNG constructible from a fixed-size seed.
    pub trait SeedableRng: Sized {
        /// The seed type (a byte array).
        type Seed: Default + AsMut<[u8]>;

        /// Creates an RNG from a full seed.
        fn from_seed(seed: Self::Seed) -> Self;

        /// Creates an RNG from a `u64`, expanding it with SplitMix64 exactly
        /// as the real `rand_core` does.
        fn seed_from_u64(mut state: u64) -> Self {
            let mut seed = Self::Seed::default();
            for chunk in seed.as_mut().chunks_mut(4) {
                // SplitMix64 (Vigna), as used by rand_core::SeedableRng.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let bytes = (z as u32).to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
            Self::from_seed(seed)
        }
    }
}

pub use rand_core::RngCore;

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a range by the shim.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($t:ty, $unit:ident) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    };
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 random mantissa bits in [0, 1).
    (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
}
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}
impl_sample_uniform_float!(f32, unit_f32);
impl_sample_uniform_float!(f64, unit_f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the real crate's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// User-facing RNG extension methods (shim for `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (shim for `rand::seq`).

    use super::{Rng, RngCore};

    /// Extension methods on slices (shim for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Draws `amount` distinct elements (fewer if the slice is shorter),
        /// returning an iterator over references in selection order.
        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            // Partial Fisher-Yates over an index vector.
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic generator for shim self-tests.
    struct SplitMix64(u64);

    impl RngCore for SplitMix64 {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SplitMix64 {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Self(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(5i32..=9);
            assert!((5..=9).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let d = rng.gen_range(0.0f64..1e-3);
            assert!((0.0..1e-3).contains(&d));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SplitMix64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        let mut rng = SplitMix64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = SplitMix64(5);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 7).copied().collect();
        assert_eq!(picked.len(), 7);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 7);
        // Requesting more than available returns everything.
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 20);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = SplitMix64::seed_from_u64(42).next_u64();
        let b = SplitMix64::seed_from_u64(42).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, SplitMix64::seed_from_u64(43).next_u64());
    }
}
