//! Offline shim for the `rand_chacha` crate (see `vendor/README.md`).
//!
//! [`ChaCha8Rng`] is a genuine ChaCha stream cipher with 8 rounds used as a
//! deterministic RNG. It is seeded through the shim `rand_core::SeedableRng`
//! (32-byte seed; `seed_from_u64` expands via SplitMix64). The keystream is
//! a correct ChaCha8 keystream, though the *word serialisation order* is not
//! guaranteed to be bit-identical to the real `rand_chacha` crate — only
//! determinism per seed is relied upon in this workspace.

pub use rand::rand_core;

use rand::rand_core::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit block counter,
    /// 64-bit nonce (zero).
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    word_pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16], rounds: usize, out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        chacha_block(&self.state, CHACHA_ROUNDS, &mut self.buffer);
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_pos = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants of the ChaCha specification.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Block counter and nonce start at zero.
        Self {
            state,
            buffer: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let word = self.buffer[self.word_pos];
        self.word_pos += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn quarter_round_matches_rfc_7539_vector() {
        // RFC 7539 §2.1.1 test vector for one quarter round.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn works_with_the_rng_extension_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = rng.gen_range(10u32..20);
        assert!((10..20).contains(&v));
        let p: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&p));
        let mean = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
