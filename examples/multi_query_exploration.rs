//! Dataset-exploration session (paper §4.5): a sequence of filter queries
//! drifting across class subsets, comparing MaskSearch with incremental
//! indexing (MS-II) against a no-index full-scan baseline inside the same
//! API.
//!
//! Run with: `cargo run --release --example multi_query_exploration`

use masksearch::datagen::{DatasetSpec, ExplorationWorkload, RandomQueryGenerator};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::storage::{DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let spec = DatasetSpec {
        name: "exploration".to_string(),
        num_images: 250,
        models: 2,
        mask_width: 64,
        mask_height: 64,
        num_classes: 20,
        seed: 5,
        focus_probability: 0.7,
    };
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        DiskProfile::ebs_gp3(),
    ));
    let dataset = spec
        .generate_into(store.as_ref())
        .expect("generate dataset");

    // A 30-query exploration workload that revisits previously seen masks
    // half of the time (the paper's Workload 2).
    let mut generator = RandomQueryGenerator::new(8, spec.mask_width, spec.mask_height);
    let workload = ExplorationWorkload::generate(
        "Workload 2",
        &dataset.catalog.mask_ids(),
        30,
        0.5,
        &mut generator,
        123,
    );

    let config = ChiConfig::new(8, 8, 16).unwrap();
    let run = |mode: IndexingMode, label: &str| {
        store.io_stats().reset();
        let session = Session::new(
            Arc::clone(&store) as Arc<dyn MaskStore>,
            dataset.catalog.clone(),
            SessionConfig::new(config).indexing_mode(mode),
        )
        .expect("create session");
        let mut cumulative = Duration::ZERO;
        let mut loaded = 0u64;
        for (i, wq) in workload.queries.iter().enumerate() {
            let out = session.execute(&wq.query).expect("workload query");
            cumulative += out.stats.modeled_total();
            loaded += out.stats.masks_loaded;
            if (i + 1) % 10 == 0 {
                println!(
                    "  {label}: after {:2} queries: cumulative {:.2}s, {} masks loaded so far",
                    i + 1,
                    cumulative.as_secs_f64(),
                    loaded
                );
            }
        }
        cumulative
    };

    println!(
        "exploration workload of {} queries over {} masks\n",
        30,
        spec.num_masks()
    );
    println!("MaskSearch with incremental indexing (MS-II):");
    let ms_ii = run(IndexingMode::Incremental, "MS-II");
    println!("\nno index (every query scans its targets, NumPy-style):");
    let scan = run(IndexingMode::Disabled, "scan ");
    println!(
        "\ncumulative modelled time: MS-II {:.2}s vs full scan {:.2}s ({:.1}x faster)",
        ms_ii.as_secs_f64(),
        scan.as_secs_f64(),
        scan.as_secs_f64() / ms_ii.as_secs_f64().max(1e-9)
    );
}
