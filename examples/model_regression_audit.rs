//! Model-regression audit — the flagship multi-mask scenario of the
//! MaskSearch demonstration paper (Wei et al., arXiv:2404.06563): a model
//! was retrained, and the auditor wants the images where the new model's
//! saliency disagrees most with the old one, *without* loading every mask
//! pair.
//!
//! The audit runs three multi-mask SQL queries over a self-join of the mask
//! relation (`a` = model v1, `b` = model v2):
//!
//! ```sql
//! -- 1. Largest absolute disagreement:
//! SELECT image_id, CP(DIFF(a.mask, b.mask), full, (0.5, 1.0)) AS d
//! FROM masks a JOIN masks b ON a.image_id = b.image_id
//! WHERE a.model_id = 1 AND b.model_id = 2 ORDER BY d DESC LIMIT 10;
//!
//! -- 2. Worst agreement by IoU of the binarised maps:
//! SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS agreement
//! FROM masks a JOIN masks b ON a.image_id = b.image_id
//! WHERE a.model_id = 1 AND b.model_id = 2 ORDER BY agreement ASC LIMIT 10;
//!
//! -- 3. Regressions inside the labelled object box only:
//! SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id
//! WHERE a.model_id = 1 AND b.model_id = 2
//!   AND CP(DIFF(a.mask, b.mask), object, (0.5, 1.0)) > 200;
//! ```
//!
//! Run with: `cargo run --release --example model_regression_audit`

use masksearch::core::{ImageId, Mask, MaskId, MaskRecord, ModelId, Roi};
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::sql::{compile_statement, Statement};
use masksearch::storage::{Catalog, MaskStore, MemoryMaskStore};
use std::collections::HashSet;
use std::sync::Arc;

const SIDE: u32 = 128;
const IMAGES: u64 = 240;

fn main() {
    // --- Synthetic audit corpus -------------------------------------------
    // v1: a focused saliency blob per image. v2: the same blob, except every
    // 12th image regressed — the retrained model looks somewhere else.
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    let mut regressed = HashSet::new();
    for i in 0..IMAGES {
        let blob = |cx: f32, cy: f32| {
            Mask::from_fn(SIDE, SIDE, move |x, y| {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                (0.95 * (-(dx * dx + dy * dy) / 180.0).exp()).min(0.999)
            })
        };
        let c = SIDE as f32 / 2.0;
        let jitter = (i % 5) as f32 * 0.4;
        let v1 = blob(c, c);
        let v2 = if i % 12 == 3 {
            regressed.insert(ImageId::new(i));
            blob(c + SIDE as f32 / 3.5, c - SIDE as f32 / 4.0)
        } else {
            blob(c + jitter, c - jitter)
        };
        for (slot, (mask, model)) in [(v1, 1u64), (v2, 2u64)].into_iter().enumerate() {
            let id = MaskId::new(i * 2 + slot as u64);
            store.put(id, &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(id)
                    .image_id(ImageId::new(i))
                    .model_id(ModelId::new(model))
                    .shape(SIDE, SIDE)
                    .object_box(Roi::new(32, 32, 96, 96).unwrap())
                    .build(),
            );
        }
    }
    println!(
        "corpus: {IMAGES} images x 2 models, {} planted regressions\n",
        regressed.len()
    );

    let session = Session::new(
        store as Arc<dyn MaskStore>,
        catalog,
        SessionConfig::new(ChiConfig::new(16, 16, 16).unwrap()).indexing_mode(IndexingMode::Eager),
    )
    .unwrap();

    let audits = [
        (
            "top disagreement (CP over DIFF)",
            "SELECT image_id, CP(DIFF(a.mask, b.mask), full, (0.5, 1.0)) AS d \
             FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE a.model_id = 1 AND b.model_id = 2 ORDER BY d DESC LIMIT 10",
        ),
        (
            "worst agreement (IoU ascending)",
            "SELECT image_id, IOU(a.mask, b.mask, full, 0.5) AS agreement \
             FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE a.model_id = 1 AND b.model_id = 2 ORDER BY agreement ASC LIMIT 10",
        ),
        (
            "object-box regressions (filter)",
            "SELECT image_id FROM masks a JOIN masks b ON a.image_id = b.image_id \
             WHERE a.model_id = 1 AND b.model_id = 2 \
             AND CP(DIFF(a.mask, b.mask), object, (0.5, 1.0)) > 200",
        ),
    ];

    for (title, sql) in audits {
        let Statement::Query(query) = compile_statement(sql).unwrap() else {
            unreachable!("audit statements are queries");
        };
        let out = session.execute(&query).unwrap();
        println!("== {title} ==");
        let flagged: Vec<ImageId> = out.image_ids();
        for row in out.rows.iter().take(10) {
            match row.value {
                Some(v) => println!("  image {:?}  value {v:.4}", row.key),
                None => println!("  image {:?}", row.key),
            }
        }
        let caught = flagged.iter().filter(|id| regressed.contains(id)).count();
        println!(
            "  -> {}/{} flagged images are planted regressions; \
             {} of {} pairs loaded (pruned {})\n",
            caught,
            flagged.len(),
            out.stats.verified,
            out.stats.pairs_bound,
            out.stats.pruned,
        );
    }
}
