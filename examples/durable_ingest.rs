//! Serve queries while a writer streams new masks into a durable database —
//! the continuously-ingesting ML-workflow scenario of the MaskSearch
//! demonstration paper, on top of the `masksearch-db` WAL.
//!
//! ```sh
//! cargo run --release --example durable_ingest
//! ```
//!
//! The example opens (or recovers) a mask database under the system temp
//! directory, starts a TCP server over it, streams insert batches from a
//! writer thread while reader threads keep querying, then checkpoints and
//! reopens the database to show that everything survived.

use masksearch::core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch::db::{DbConfig, MaskDb};
use masksearch::index::ChiConfig;
use masksearch::query::{Mutation, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const W: u32 = 64;
const H: u32 = 64;
const BATCHES: u64 = 40;
const BATCH: u64 = 8;

fn synthetic_mask(id: u64) -> Mask {
    // A bright blob whose radius depends on the mask id.
    let radius = 6.0 + (id % 17) as f32;
    Mask::from_fn(W, H, move |x, y| {
        let dx = x as f32 - (W / 2) as f32;
        let dy = y as f32 - (H / 2) as f32;
        if (dx * dx + dy * dy).sqrt() < radius {
            0.9
        } else {
            0.05
        }
    })
}

fn open_db(dir: &std::path::Path) -> MaskDb {
    MaskDb::open(
        dir,
        DbConfig::default().chi_config(ChiConfig::new(8, 8, 8).unwrap()),
    )
    .expect("open mask database")
}

fn main() {
    let dir = std::env::temp_dir().join("masksearch-durable-ingest-example");
    let _ = std::fs::remove_dir_all(&dir);
    let db = open_db(&dir);

    // The session shares the database's store-maintained CHI: every
    // committed insert is filterable immediately, and never before it is
    // durable.
    let session = Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()),
        db.chi_store(),
    );
    let engine = Engine::new(session, ServiceConfig::new(4));
    let server = Server::bind("127.0.0.1:0", engine).unwrap().spawn();
    let addr = server.local_addr();
    println!("serving on {addr}, ingesting {} masks...", BATCHES * BATCH);

    let done = Arc::new(AtomicBool::new(false));

    // Readers: keep asking for large-blob masks while ingestion runs.
    let readers: Vec<_> = (0..2)
        .map(|reader| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut results = 0u64;
                while !done.load(Ordering::Acquire) {
                    let response = client
                        .query(&format!(
                            "SELECT mask_id FROM masks \
                             WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > 400"
                        ))
                        .unwrap();
                    results = results.max(response.rows.len() as u64);
                }
                client.quit().unwrap();
                println!("reader {reader}: saw up to {results} matching masks");
            })
        })
        .collect();

    // Writer: stream batches through the engine so the shared session's
    // catalog publishes each batch atomically to the readers (a TCP client
    // could do the same with INSERT statements; see the SQL dialect docs).
    let writer_engine = server.engine().clone();
    let writer = std::thread::spawn(move || {
        for batch_no in 0..BATCHES {
            let batch: Vec<(MaskRecord, Mask)> = (batch_no * BATCH..(batch_no + 1) * BATCH)
                .map(|id| {
                    (
                        MaskRecord::builder(MaskId::new(id))
                            .image_id(ImageId::new(id / 4))
                            .shape(W, H)
                            .build(),
                        synthetic_mask(id),
                    )
                })
                .collect();
            writer_engine
                .execute_mutation(Mutation::Insert(batch))
                .expect("committed batch");
        }
    });

    writer.join().unwrap();
    done.store(true, Ordering::Release);
    for reader in readers {
        reader.join().unwrap();
    }

    let stats = db.ingest_stats();
    println!(
        "ingested {} masks in {} commits ({} WAL bytes, {} checkpoints so far)",
        stats.masks_inserted, stats.commits, stats.wal_bytes, stats.checkpoints
    );
    let metrics = server.engine().metrics();
    println!(
        "served {} queries at {:.0} QPS while ingesting",
        metrics.completed, metrics.qps
    );
    server.shutdown();

    // Checkpoint: page file fsynced, WAL truncated, CHI file rewritten.
    db.checkpoint().unwrap();
    println!("checkpointed; wal is now {} bytes", db.store().wal_bytes());
    drop(db);

    // Reopen to prove durability: same masks, same index.
    let reopened = open_db(&dir);
    println!(
        "reopened: {} masks, {} CHI entries — all still there",
        reopened.catalog().len(),
        reopened.chi_store().len()
    );
    assert_eq!(reopened.catalog().len() as u64, BATCHES * BATCH);
    let _ = std::fs::remove_dir_all(&dir);
}
