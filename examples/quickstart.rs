//! Quickstart: build a small mask database, index it, and run the basic
//! MaskSearch query shapes.
//!
//! Run with: `cargo run --release --example quickstart`

use masksearch::core::{MaskAgg, PixelRange, Roi};
use masksearch::datagen::DatasetSpec;
use masksearch::index::ChiConfig;
use masksearch::query::{
    CpTerm, Expr, IndexingMode, Order, Query, ScalarAgg, Session, SessionConfig,
};
use masksearch::storage::{MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;

fn main() {
    // 1. Generate a small synthetic saliency-map dataset (stand-in for the
    //    GradCAM maps the paper computes over ImageNet / WILDS).
    let spec = DatasetSpec {
        name: "quickstart".to_string(),
        num_images: 200,
        models: 2,
        mask_width: 64,
        mask_height: 64,
        num_classes: 10,
        seed: 1,
        focus_probability: 0.7,
    };
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        masksearch::storage::DiskProfile::ebs_gp3(),
    ));
    let dataset = spec
        .generate_into(store.as_ref())
        .expect("generate dataset");
    println!(
        "generated {} masks over {} images ({}x{} pixels each)",
        spec.num_masks(),
        spec.num_images,
        spec.mask_width,
        spec.mask_height
    );

    // 2. Open a MaskSearch session with an eagerly built Cumulative
    //    Histogram Index (8x8-pixel cells, 16 value bins).
    let session = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        dataset.catalog.clone(),
        SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap()).indexing_mode(IndexingMode::Eager),
    )
    .expect("create session");
    println!(
        "indexed {} masks, index size {} KiB\n",
        session.indexed_masks(),
        session.index_bytes() / 1024
    );

    // 3. Filter query: masks with more than 300 salient pixels (value >= 0.8)
    //    inside a fixed region of interest.
    let roi = Roi::new(16, 16, 48, 48).unwrap();
    let salient = PixelRange::new(0.8, 1.0).unwrap();
    let filter = Query::filter_cp_gt(roi, salient, 300.0);
    let result = session.execute(&filter).expect("filter query");
    println!(
        "filter query: {} masks match; loaded {}/{} masks (FML {:.3}) in {:?}",
        result.len(),
        result.stats.masks_loaded,
        result.stats.candidates,
        result.stats.fml(),
        result.stats.modeled_total()
    );

    // 4. Top-k query: the 5 masks with the most salient pixels in their
    //    foreground-object box.
    let topk = Query::top_k(Expr::cp_object(salient), 5, Order::Desc);
    let result = session.execute(&topk).expect("top-k query");
    println!("top-5 masks by salient pixels in the object box:");
    for row in &result.rows {
        println!("  {:?} -> {:.0} pixels", row.key, row.value.unwrap_or(0.0));
    }

    // 5. Aggregation query: the 5 images whose two models' saliency maps have
    //    the highest average salient-pixel count in the object box.
    let agg =
        Query::aggregate(Expr::cp_object(salient), ScalarAgg::Avg).with_group_top_k(5, Order::Desc);
    let result = session.execute(&agg).expect("aggregation query");
    println!("\ntop-5 images by mean salient pixels across models:");
    for row in &result.rows {
        println!("  {:?} -> {:.1}", row.key, row.value.unwrap_or(0.0));
    }

    // 6. Mask-aggregation query (paper Example 2): images where the two
    //    models' thresholded maps overlap the most.
    let intersect = Query::mask_aggregate(
        MaskAgg::IntersectThreshold { threshold: 0.7 },
        CpTerm::object_roi(PixelRange::new(0.7, 1.0).unwrap()),
    )
    .with_group_top_k(5, Order::Desc);
    let result = session.execute(&intersect).expect("mask aggregation query");
    println!("\ntop-5 images by model-agreement (intersection of thresholded maps):");
    for row in &result.rows {
        println!(
            "  {:?} -> {:.0} overlapping pixels",
            row.key,
            row.value.unwrap_or(0.0)
        );
    }
}
