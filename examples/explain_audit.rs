//! An end-to-end audit of the observability layer: `EXPLAIN`, `EXPLAIN
//! ANALYZE`, Prometheus metrics, query profiles, and per-shape statistics,
//! exercised first against a [`Session`] directly and then over the wire
//! through the TCP service.
//!
//! Run with: `cargo run --release --example explain_audit`

use masksearch::datagen::DatasetSpec;
use masksearch::index::ChiConfig;
use masksearch::obs::prom;
use masksearch::query::{shape_key, IndexingMode, Session, SessionConfig};
use masksearch::service::{Client, Engine, Server, ServiceConfig};
use masksearch::sql::compile;
use masksearch::storage::{DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let spec = DatasetSpec {
        name: "explain-audit".to_string(),
        num_images: 120,
        models: 2,
        mask_width: 64,
        mask_height: 64,
        num_classes: 10,
        seed: 23,
        focus_probability: 0.7,
    };
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        DiskProfile::ebs_gp3(),
    ));
    let dataset = spec
        .generate_into(store.as_ref())
        .expect("generate dataset");
    let config =
        SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap()).indexing_mode(IndexingMode::Eager);
    let session = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        dataset.catalog.clone(),
        config,
    )
    .expect("create session");

    let sql = "SELECT mask_id FROM masks \
               WHERE CP(mask, (8, 8, 56, 56), (0.85, 1.0)) > 200 AND model_id = 1";
    let query = compile(sql).expect("compile SQL");

    // 1. The static plan: operators, strategy, and kernel choice — no
    //    execution, so no counters.
    println!("== EXPLAIN (session) ==");
    for line in session.explain(&query).render() {
        println!("{line}");
    }

    // 2. The measured plan: the same tree annotated with the exact counters
    //    the execution produced (these equal `output.stats` verbatim).
    let (plan, output) = session.explain_analyze(&query).expect("execute query");
    println!("\n== EXPLAIN ANALYZE (session) ==");
    for line in plan.render() {
        println!("{line}");
    }
    println!(
        "-> {} rows; plan counters match QueryStats: candidates={} pruned={} loaded={}",
        output.len(),
        output.stats.candidates,
        output.stats.pruned,
        output.stats.masks_loaded,
    );

    // 3. The same shape, aggregated: every execution folds its counters into
    //    the per-shape registry (persisted at checkpoint on durable stores).
    let shape = shape_key(&query, session.config());
    let aggregate = session
        .shape_stats()
        .get(&shape)
        .expect("shape observed after execution");
    println!(
        "\nshape {shape}: {} query(ies), {} candidates, {} masks loaded",
        aggregate.queries, aggregate.sums.candidates, aggregate.sums.masks_loaded,
    );

    // 4. Now the wire: the same requests through a TCP server. A zero
    //    slow-query threshold makes every statement emit a JSON line on
    //    stderr, so the audit shows the slow-query log format too.
    let engine = Engine::new(session, ServiceConfig::new(2).slow_query(Duration::ZERO));
    let server = Server::bind("127.0.0.1:0", engine).expect("bind").spawn();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    println!("\n== EXPLAIN ANALYZE (over TCP) ==");
    for line in client.explain(true, sql).expect("explain over the wire") {
        println!("{line}");
    }

    let metrics = client.metrics().expect("metrics over the wire");
    let samples = prom::validate(&metrics).expect("valid Prometheus exposition");
    println!("\n== METRICS (over TCP) == {samples} samples; excerpt:");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("masksearch_queries") || l.starts_with("masksearch_masks_loaded"))
    {
        println!("{line}");
    }

    println!("\n== STATS PROFILES (over TCP) ==");
    for line in client.profiles(1).expect("profiles over the wire") {
        println!("{line}");
    }

    // 5. The temporal layer: windowed gauges over the last minute and the
    //    flight recorder's status line (off here — no capture configured).
    let windowed = client.metrics_window(60).expect("METRICS WINDOW");
    prom::validate(&windowed).expect("valid windowed exposition");
    println!("\n== METRICS WINDOW 60 (over TCP) == excerpt:");
    for line in windowed.lines().filter(|l| {
        l.starts_with("masksearch_window_qps") || l.starts_with("masksearch_window_queries")
    }) {
        println!("{line}");
    }
    let status = client.record_status().expect("RECORD STATUS");
    println!("\n== RECORD STATUS (over TCP) ==\n{status}");

    client.quit().expect("quit");
    server.shutdown();
}
