//! Runs a MaskSearch server over a synthetic dataset and serves the SQL
//! dialect on TCP — the quickest way to poke the service layer by hand:
//!
//! ```sh
//! cargo run --release --example serve_tcp -- 7878
//! # in another terminal:
//! printf 'SELECT mask_id FROM masks WHERE CP(mask, object, (0.8, 1.0)) > 100\nQUIT\n' \
//!     | nc 127.0.0.1 7878
//! ```
//!
//! With no argument an ephemeral port is chosen and printed.

use masksearch::datagen::DatasetSpec;
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::service::{Engine, Server, ServiceConfig};
use masksearch::storage::{MaskStore, MemoryMaskStore};
use std::sync::Arc;

fn main() {
    let port: u16 = std::env::args()
        .nth(1)
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);

    let spec = DatasetSpec::wilds_like(0.002);
    println!(
        "generating {} ({} masks of {}x{})...",
        spec.name,
        spec.num_masks(),
        spec.mask_width,
        spec.mask_height
    );
    let store = Arc::new(MemoryMaskStore::for_tests());
    let dataset = spec
        .generate_into(store.as_ref())
        .expect("generate dataset");
    let cell = (spec.mask_width / 7).max(1);
    let session = Session::new(
        store as Arc<dyn MaskStore>,
        dataset.catalog,
        SessionConfig::new(ChiConfig::new(cell, cell, 16).unwrap())
            .indexing_mode(IndexingMode::Eager)
            .cache_bytes(64 << 20),
    )
    .expect("session");

    let workers = ServiceConfig::default().workers;
    let engine = Engine::new(session, ServiceConfig::new(workers).queue_depth(256));
    let server = Server::bind(("127.0.0.1", port), engine).expect("bind");
    println!(
        "serving masksearch-sql on {} with {workers} workers (PING / STATS / QUIT / <sql>)",
        server.local_addr()
    );
    server.run();
}
