//! Scenario 1 of the paper (the "Bob" use case): after noticing an accuracy
//! drop, retrieve images whose saliency maps have their high-value pixels
//! *dispersed across large fractions of the image* — a signature of
//! maliciously modified inputs — using an incrementally indexed session
//! (§3.6), the configuration an engineer would use when they cannot wait for
//! a full offline indexing pass.
//!
//! Run with: `cargo run --release --example adversarial_detection`

use masksearch::core::{Label, PixelRange};
use masksearch::datagen::DatasetSpec;
use masksearch::index::ChiConfig;
use masksearch::query::{Expr, IndexingMode, Predicate, Query, Selection, Session, SessionConfig};
use masksearch::storage::{DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;

fn main() {
    // A dataset where "attacked" images produce diffuse saliency: the
    // spurious-model masks play that role (their blobs land away from the
    // object, and with extra noise their salient pixels spread widely).
    let spec = DatasetSpec {
        name: "adversarial-monitoring".to_string(),
        num_images: 300,
        models: 1,
        mask_width: 96,
        mask_height: 96,
        num_classes: 8,
        seed: 2024,
        focus_probability: 0.75,
    };
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        DiskProfile::ebs_gp3(),
    ));
    let dataset = spec
        .generate_into(store.as_ref())
        .expect("generate dataset");

    // Incremental indexing: no up-front cost, indexes accumulate as queries run.
    let session = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        dataset.catalog.clone(),
        SessionConfig::new(ChiConfig::new(12, 12, 16).unwrap())
            .indexing_mode(IndexingMode::Incremental),
    )
    .expect("create session");

    // Bob starts from the misclassified images of a suspicious class, then
    // asks for masks whose salient pixels cover a large fraction of the image
    // while the object box contains comparatively little of that saliency.
    let salient = PixelRange::new(0.6, 1.0).unwrap();
    let image_area = (spec.mask_width * spec.mask_height) as f64;
    let diffuse = Predicate::gt(Expr::cp_full(salient), image_area * 0.08).and(Predicate::lt(
        Expr::cp_object(salient).div(Expr::cp_full(salient)),
        0.5,
    ));

    for (round, class) in [3u64, 5, 7].into_iter().enumerate() {
        let suspects: Vec<_> = dataset
            .catalog
            .masks_with_predicted_label(Label::new(class));
        let query = Query::filter(diffuse.clone())
            .with_selection(Selection::all().with_mask_ids(suspects.clone()));
        let result = session.execute(&query).expect("detection query");
        println!(
            "round {}: class {class}: {} of {} masks flagged as diffuse/misdirected; \
             loaded {} masks, {} new indexes built, modelled time {:?}",
            round + 1,
            result.len(),
            suspects.len(),
            result.stats.masks_loaded,
            result.stats.indexes_built,
            result.stats.modeled_total()
        );
    }

    println!(
        "\nafter three investigative queries the session has indexed {} masks \
         ({} KiB of CHI) without any offline indexing pass",
        session.indexed_masks(),
        session.index_bytes() / 1024
    );

    // Re-running the first query now benefits from the incrementally built
    // indexes: far fewer masks are loaded.
    let suspects: Vec<_> = dataset.catalog.masks_with_predicted_label(Label::new(3));
    let query = Query::filter(diffuse).with_selection(Selection::all().with_mask_ids(suspects));
    let again = session.execute(&query).expect("repeat query");
    println!(
        "repeating the class-3 query: {} masks loaded this time (was a full scan before), \
         modelled time {:?}",
        again.stats.masks_loaded,
        again.stats.modeled_total()
    );
}
