//! The paper's SQL interface end to end: compile the dialect of §2.1–§2.2
//! into MaskSearch queries and execute them against an indexed session.
//!
//! Run with: `cargo run --release --example sql_queries`

use masksearch::datagen::DatasetSpec;
use masksearch::index::ChiConfig;
use masksearch::query::{IndexingMode, Session, SessionConfig};
use masksearch::sql::compile;
use masksearch::storage::{DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;

fn main() {
    let spec = DatasetSpec {
        name: "sql-demo".to_string(),
        num_images: 150,
        models: 2,
        mask_width: 64,
        mask_height: 64,
        num_classes: 10,
        seed: 17,
        focus_probability: 0.7,
    };
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        DiskProfile::ebs_gp3(),
    ));
    let dataset = spec
        .generate_into(store.as_ref())
        .expect("generate dataset");
    let session = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        dataset.catalog.clone(),
        SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap()).indexing_mode(IndexingMode::Eager),
    )
    .expect("create session");

    let statements = [
        // Scenario 2 / Example 1: X-rays whose lung region has too few salient pixels.
        "SELECT image_id FROM masks \
         WHERE CP(mask, (16, 16, 48, 48), (0.85, 1.0)) < 50 AND model_id = 1",
        // Example 1 (ratio): the 10 masks whose saliency is least focused on the object.
        "SELECT mask_id, CP(mask, object, (0.85, 1.0)) / CP(mask, full, (0.85, 1.0)) AS r \
         FROM masks ORDER BY r ASC LIMIT 10",
        // Q4: images where the two models agree the object is salient, on average.
        "SELECT image_id, AVG(CP(mask, object, (0.8, 1.0))) AS s \
         FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 10",
        // Example 2 / Q5: images with the largest overlap of the two models' maps.
        "SELECT image_id, CP(INTERSECT(mask > 0.7), object, (0.7, 1.0)) AS s \
         FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 10",
    ];

    for sql in statements {
        println!("SQL> {sql}");
        let query = compile(sql).expect("compile SQL");
        let output = session.execute(&query).expect("execute query");
        println!(
            "  -> {} rows; loaded {}/{} masks (FML {:.3}), modelled time {:?}",
            output.len(),
            output.stats.masks_loaded,
            output.stats.candidates,
            output.stats.fml(),
            output.stats.modeled_total()
        );
        for row in output.rows.iter().take(3) {
            println!("     {:?} value={:?}", row.key, row.value);
        }
        println!();
    }
}
